#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/assert.h"
#include "common/distributions.h"
#include "common/rng.h"

namespace anu::workload {

namespace {

/// Draws `count` arrival times in [0, duration) as a bounded-Pareto renewal
/// process rescaled to span the duration. Rescaling preserves burst
/// structure (ratios between gaps) while hitting the exact request count.
std::vector<SimTime> pareto_arrivals(std::size_t count, SimTime duration,
                                     const BoundedPareto& gap,
                                     Xoshiro256& rng) {
  // Batched inversion: one bulk uniform fill, then transform + prefix-sum
  // in place. Consumes exactly `count` draws in the same order as a
  // sample() loop, so the stream (and every seeded workload) is unchanged.
  std::vector<SimTime> arrivals(count);
  rng.fill_doubles(arrivals);
  double t = 0.0;
  for (SimTime& a : arrivals) {
    t += gap.from_uniform(a);
    a = t;
  }
  if (arrivals.empty()) return arrivals;
  // Rescale so the last arrival lands just inside the run.
  const double scale = duration * 0.999 / arrivals.back();
  for (SimTime& a : arrivals) a *= scale;
  return arrivals;
}

}  // namespace

double synthetic_mean_demand(const SyntheticConfig& config) {
  // Offered load = request_count * mean_demand over `duration`; utilization
  // target rho = offered / (duration * capacity)  =>  mean_demand:
  return config.target_utilization * config.duration *
         config.cluster_capacity / static_cast<double>(config.request_count);
}

Workload make_synthetic_workload(const SyntheticConfig& config) {
  ANU_REQUIRE(config.file_set_count > 0);
  ANU_REQUIRE(config.request_count >= config.file_set_count);
  ANU_REQUIRE(config.duration > 0.0);
  ANU_REQUIRE(config.weight_hi >= config.weight_lo && config.weight_lo > 0.0);
  ANU_REQUIRE(config.target_utilization > 0.0 &&
              config.target_utilization < 1.0);

  Xoshiro256 weight_rng = Xoshiro256::substream(config.seed, 0);
  const UniformReal weight_dist(config.weight_lo, config.weight_hi);

  // File sets and their weight factors X_i.
  std::vector<FileSet> file_sets;
  file_sets.reserve(config.file_set_count);
  std::vector<double> x(config.file_set_count);
  double x_sum = 0.0;
  for (std::size_t i = 0; i < config.file_set_count; ++i) {
    x[i] = weight_dist.sample(weight_rng);
    x_sum += x[i];
  }

  // Request budget split proportionally to X_i (largest-remainder rounding
  // so counts sum exactly to request_count and every file set gets >= 1).
  std::vector<std::size_t> counts(config.file_set_count, 1);
  std::size_t assigned = config.file_set_count;
  std::vector<std::pair<double, std::size_t>> remainders;
  remainders.reserve(config.file_set_count);
  const auto budget = static_cast<double>(config.request_count -
                                          config.file_set_count);
  for (std::size_t i = 0; i < config.file_set_count; ++i) {
    const double exact = budget * x[i] / x_sum;
    const auto whole = static_cast<std::size_t>(exact);
    counts[i] += whole;
    assigned += whole;
    remainders.emplace_back(exact - static_cast<double>(whole), i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; assigned < config.request_count; ++k, ++assigned) {
    ++counts[remainders[k % remainders.size()].second];
  }

  const double mean_demand = synthetic_mean_demand(config);
  // Demand jitter with mean exactly mean_demand.
  const double sigma = config.demand_jitter_sigma;
  const Lognormal jitter(-0.5 * sigma * sigma, sigma);

  // The scaling factor c maps weight factors X to unit-speed seconds:
  // weight_i = X_i * c with sum(weight) = total offered demand.
  const double total_demand =
      mean_demand * static_cast<double>(config.request_count);
  const double c = total_demand / x_sum;

  std::vector<Request> requests;
  requests.reserve(config.request_count);
  const double gap_lo = 1.0;
  const BoundedPareto gap(config.pareto_shape, gap_lo,
                          gap_lo * config.pareto_bound_ratio);
  for (std::size_t i = 0; i < config.file_set_count; ++i) {
    const auto id = FileSetId(static_cast<std::uint32_t>(i));
    file_sets.push_back(
        FileSet{id, "fileset/" + std::to_string(i), x[i] * c});
    Xoshiro256 rng = Xoshiro256::substream(config.seed, 1000 + i);
    const auto arrivals = pareto_arrivals(counts[i], config.duration, gap, rng);
    for (SimTime t : arrivals) {
      const double demand =
          sigma > 0.0 ? mean_demand * jitter.sample(rng) : mean_demand;
      requests.push_back(Request{t, id, demand});
    }
  }

  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.file_set < b.file_set;
            });
  return Workload(std::move(file_sets), std::move(requests));
}

}  // namespace anu::workload
