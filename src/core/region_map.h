// The unit-interval partition table — ANU randomization's only shared state.
//
// Paper §4. For a system with k servers the unit interval is divided into
// P = 2^(ceil(lg k) + 1) equal partitions. Servers are assigned to half of
// the interval (the half-occupancy invariant): each server owns a set of
// whole partitions plus at most one prefix-occupied ("partial") partition.
// Those two invariants together guarantee a free partition always exists for
// a recovering or newly-added server:
//
//   full partitions  <= P/2 - 1 whenever any partial exists (shares sum to
//                       P/2 partition-sizes), and
//   partials         <= k <= P/2,
//   so occupied partitions <= P - 1.
//
// The table is small — O(P) = O(k) entries — and is the *only* state that
// must be replicated cluster-wide, which is the paper's shared-state
// advantage over virtual processors (§5.4).
//
// Region scaling preserves locality: shrinking a server releases from its
// partial partition first and then converts whole partitions; growth fills
// the partial and then claims the lowest-indexed free partitions. The load
// that moves is exactly the symmetric difference of the old and new region
// maps.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "common/unit_point.h"

namespace anu::core {

class RegionMap {
 public:
  /// Raw occupancy total: exactly half the unit interval.
  static constexpr UnitPoint::raw_type kHalfRaw = UnitPoint::kOneRaw / 2;

  /// Builds the table for `server_count` servers with equal shares
  /// (paper §4: "ANU randomization initially assigns servers mapped regions
  /// of equal length, because it has no knowledge of server capabilities").
  explicit RegionMap(std::size_t server_count);

  /// Number of partitions P (always 2^(ceil(lg k)+1) for the current k).
  [[nodiscard]] std::size_t partition_count() const {
    return partitions_.size();
  }
  [[nodiscard]] UnitPoint partition_size() const {
    return UnitPoint::from_raw(psize_);
  }
  [[nodiscard]] std::size_t server_count() const { return shares_.size(); }

  /// O(1) point location: which server's mapped region contains p, if any.
  [[nodiscard]] std::optional<ServerId> owner_at(UnitPoint p) const;

  /// Total mapped length of one server.
  [[nodiscard]] UnitPoint share(ServerId id) const;
  /// All shares, indexed by server id.
  [[nodiscard]] std::vector<UnitPoint> shares() const;

  /// The server's mapped region as maximal disjoint segments (for tests,
  /// diagnostics, and shed computation).
  [[nodiscard]] std::vector<UnitSegment> segments_of(ServerId id) const;

  /// Rescales every server's mapped region to the given targets.
  /// `targets_raw` is indexed by server id, entries must sum to kHalfRaw
  /// (use normalize_shares). Locality-preserving: only the share deltas move.
  void rebalance(const std::vector<UnitPoint::raw_type>& targets_raw);

  /// Registers a new server slot (id == current server_count()), doubling
  /// the partition count first if 2^(ceil(lg k')+1) exceeds it. Re-
  /// partitioning moves no load (paper Fig. 3). The new server starts with a
  /// zero share; callers follow up with rebalance() to give it space.
  ServerId add_server_slot();

  /// Largest-remainder rounding of positive weights onto kHalfRaw so the
  /// result sums exactly to the half-occupancy total. Zero-weight servers
  /// get zero share (down servers).
  [[nodiscard]] static std::vector<UnitPoint::raw_type> normalize_shares(
      const std::vector<double>& weights);

  /// Serialized size of the table (what every node must replicate):
  /// one (owner, occupied-prefix) entry per partition.
  [[nodiscard]] std::size_t shared_state_bytes() const;

  /// Verifies: share bookkeeping matches the table, total occupancy is
  /// exactly kHalfRaw, every server has at most one partial partition, and
  /// at least one partition is completely free. Aborts on violation.
  void check_invariants() const;

  /// Partitions required for k servers: 2^(ceil(lg k) + 1).
  [[nodiscard]] static std::size_t required_partitions(std::size_t k);

  /// Wire form: one (owner, occupied-prefix) pair per partition — exactly
  /// what the delegate broadcasts after a round (§4: "the only replicated
  /// state"). Owner kInvalid (0xffffffff) marks a free partition.
  using Snapshot = std::vector<std::pair<std::uint32_t, UnitPoint::raw_type>>;
  [[nodiscard]] Snapshot snapshot() const;
  /// Rebuilds a table from a snapshot (partition count must be a power of
  /// two >= required for `server_count`); verifies all invariants.
  [[nodiscard]] static RegionMap from_snapshot(const Snapshot& snapshot,
                                               std::size_t server_count);
  /// Content equality (same partitions, same owners, same prefixes).
  bool operator==(const RegionMap& other) const;

 private:
  RegionMap() = default;  // for from_snapshot

  struct Partition {
    ServerId owner;                    // invalid when free
    UnitPoint::raw_type occupied = 0;  // prefix length, 0 < occ <= psize_

    bool operator==(const Partition&) const = default;
  };

  void release(std::uint32_t server, UnitPoint::raw_type amount,
               std::vector<std::size_t>& freed);
  void acquire(std::uint32_t server, UnitPoint::raw_type amount,
               std::vector<std::size_t>& free_order);
  void split_partitions();
  [[nodiscard]] std::optional<std::size_t> partial_of(std::uint32_t s) const;

  UnitPoint::raw_type psize_ = 0;
  std::vector<Partition> partitions_;
  std::vector<UnitPoint::raw_type> shares_;  // per server id
};

}  // namespace anu::core
