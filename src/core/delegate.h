// Delegate election.
//
// Paper §4: per-interval latency reports go "to an elected delegate
// server. ... The delegate is designed to be stateless and determines the
// new load configuration based solely on reported latencies. If the
// delegate fails, the next elected delegate runs the same protocol with
// the same information."
//
// Election here is the classic deterministic rule — the lowest-id up
// server — so every node agrees on the delegate without messaging beyond
// the membership view it already has. The statelessness guarantee itself
// lives in tuner.h (run_delegate_round is a pure function); this class
// just tracks who runs it, and the tests demonstrate that a mid-round
// failover produces the identical configuration.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/types.h"

namespace anu::core {

class DelegateElection {
 public:
  explicit DelegateElection(std::size_t server_count);

  /// The currently elected delegate: the lowest-id up server.
  [[nodiscard]] ServerId current() const;

  /// Membership updates (mirrors the balancer's view).
  void on_server_failed(ServerId id);
  void on_server_recovered(ServerId id);
  void on_server_added();

  [[nodiscard]] std::size_t up_count() const;
  [[nodiscard]] bool is_delegate(ServerId id) const { return current() == id; }

  /// Fired when a membership update changes who the delegate is:
  /// (new_delegate, previous_delegate). The observability layer hangs the
  /// delegate_elected trace event off this (docs/observability.md); the
  /// new delegate may be invalid() when the whole cluster is down.
  std::function<void(ServerId now, ServerId before)> on_change;

 private:
  void notify(ServerId before);

  std::vector<bool> up_;
};

}  // namespace anu::core
