#include "core/region_map.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"

namespace anu::core {

std::size_t RegionMap::required_partitions(std::size_t k) {
  ANU_REQUIRE(k > 0);
  std::size_t e = 0;
  while ((std::size_t{1} << e) < k) ++e;  // e = ceil(lg k)
  return std::size_t{1} << (e + 1);
}

RegionMap::RegionMap(std::size_t server_count) {
  ANU_REQUIRE(server_count > 0);
  const std::size_t p = required_partitions(server_count);
  psize_ = UnitPoint::kOneRaw / p;
  partitions_.assign(p, Partition{});
  shares_.assign(server_count, 0);

  std::vector<double> equal(server_count, 1.0);
  rebalance(normalize_shares(equal));
}

std::optional<ServerId> RegionMap::owner_at(UnitPoint p) const {
  const UnitPoint::raw_type raw = p.raw();
  if (raw >= UnitPoint::kOneRaw) return std::nullopt;
  const std::size_t idx = raw / psize_;
  const Partition& part = partitions_[idx];
  if (!part.owner.valid()) return std::nullopt;
  const UnitPoint::raw_type offset = raw - static_cast<UnitPoint::raw_type>(idx) * psize_;
  if (offset < part.occupied) return part.owner;
  return std::nullopt;
}

UnitPoint RegionMap::share(ServerId id) const {
  ANU_REQUIRE(id.value() < shares_.size());
  return UnitPoint::from_raw(shares_[id.value()]);
}

std::vector<UnitPoint> RegionMap::shares() const {
  std::vector<UnitPoint> out;
  out.reserve(shares_.size());
  for (auto raw : shares_) out.push_back(UnitPoint::from_raw(raw));
  return out;
}

std::vector<UnitSegment> RegionMap::segments_of(ServerId id) const {
  ANU_REQUIRE(id.value() < shares_.size());
  std::vector<UnitSegment> segments;
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    const Partition& part = partitions_[i];
    if (part.owner != id || part.occupied == 0) continue;
    const auto start = static_cast<UnitPoint::raw_type>(i) * psize_;
    const UnitSegment seg{UnitPoint::from_raw(start),
                          UnitPoint::from_raw(start + part.occupied)};
    // Merge with the previous segment when contiguous (adjacent partitions
    // fully occupied by the same server).
    if (!segments.empty() && segments.back().end == seg.begin) {
      segments.back() = UnitSegment{segments.back().begin, seg.end};
    } else {
      segments.push_back(seg);
    }
  }
  return segments;
}

std::optional<std::size_t> RegionMap::partial_of(std::uint32_t s) const {
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    const Partition& part = partitions_[i];
    if (part.owner == ServerId(s) && part.occupied > 0 &&
        part.occupied < psize_) {
      return i;
    }
  }
  return std::nullopt;
}

void RegionMap::release(std::uint32_t server, UnitPoint::raw_type amount,
                        std::vector<std::size_t>& freed) {
  ANU_REQUIRE(shares_[server] >= amount);
  shares_[server] -= amount;
  while (amount > 0) {
    std::size_t victim;
    if (auto partial = partial_of(server)) {
      victim = *partial;
    } else {
      // No partial: convert the highest-index full partition.
      victim = partitions_.size();
      for (std::size_t i = partitions_.size(); i-- > 0;) {
        if (partitions_[i].owner == ServerId(server)) {
          victim = i;
          break;
        }
      }
      ANU_ENSURE(victim < partitions_.size());
    }
    Partition& part = partitions_[victim];
    const UnitPoint::raw_type cut = std::min(part.occupied, amount);
    part.occupied -= cut;
    amount -= cut;
    if (part.occupied == 0) {
      part.owner = ServerId::invalid();
      freed.push_back(victim);
    }
  }
}

void RegionMap::acquire(std::uint32_t server, UnitPoint::raw_type amount,
                        std::vector<std::size_t>& free_order) {
  shares_[server] += amount;
  // Whole-partition claims first, preferentially from space released this
  // round (free_order lists freed-this-round partitions before long-free
  // ones): re-mapping just-released space keeps the cluster's mapped
  // point-set stable, so only the shrinking servers' file sets re-hash —
  // the paper's minimal-movement / locality-preservation property (§4).
  auto claim_next = [&](UnitPoint::raw_type occupy) {
    while (!free_order.empty() &&
           partitions_[free_order.front()].owner.valid()) {
      free_order.erase(free_order.begin());  // consumed by an earlier grower
    }
    ANU_ENSURE(!free_order.empty());  // free partition always exists
    const std::size_t idx = free_order.front();
    free_order.erase(free_order.begin());
    partitions_[idx] = Partition{ServerId(server), occupy};
  };
  while (amount >= psize_) {
    claim_next(psize_);
    amount -= psize_;
  }
  // Sub-partition tail: top up the existing partial partition (contiguous
  // prefix growth), then at most one fresh partial claim — preserving the
  // at-most-one-partial invariant.
  while (amount > 0) {
    if (auto partial = partial_of(server)) {
      Partition& part = partitions_[*partial];
      const UnitPoint::raw_type fill = std::min(psize_ - part.occupied, amount);
      part.occupied += fill;
      amount -= fill;
    } else {
      claim_next(amount);
      amount = 0;
    }
  }
}

void RegionMap::rebalance(const std::vector<UnitPoint::raw_type>& targets_raw) {
  ANU_REQUIRE(targets_raw.size() == shares_.size());
  const UnitPoint::raw_type total =
      std::accumulate(targets_raw.begin(), targets_raw.end(),
                      UnitPoint::raw_type{0});
  ANU_REQUIRE(total == kHalfRaw);

  // Shrink first so grown servers find free space, then grow. Partitions
  // freed by the shrink phase head the growers' claim order (locality).
  std::vector<std::size_t> free_order;
  for (std::uint32_t s = 0; s < shares_.size(); ++s) {
    if (targets_raw[s] < shares_[s]) {
      release(s, shares_[s] - targets_raw[s], free_order);
    }
  }
  std::sort(free_order.begin(), free_order.end());
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    if (!partitions_[i].owner.valid() &&
        std::find(free_order.begin(), free_order.end(), i) ==
            free_order.end()) {
      free_order.push_back(i);  // long-free partitions, after freed ones
    }
  }
  for (std::uint32_t s = 0; s < shares_.size(); ++s) {
    if (targets_raw[s] > shares_[s]) {
      acquire(s, targets_raw[s] - shares_[s], free_order);
    }
  }
  check_invariants();
}

void RegionMap::split_partitions() {
  std::vector<Partition> next(partitions_.size() * 2, Partition{});
  const UnitPoint::raw_type half = psize_ / 2;
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    const Partition& part = partitions_[i];
    if (!part.owner.valid()) continue;
    if (part.occupied <= half) {
      next[2 * i] = Partition{part.owner, part.occupied};
    } else {
      next[2 * i] = Partition{part.owner, half};
      next[2 * i + 1] = Partition{part.owner, part.occupied - half};
    }
  }
  partitions_ = std::move(next);
  psize_ = half;
}

ServerId RegionMap::add_server_slot() {
  const auto id = ServerId(static_cast<std::uint32_t>(shares_.size()));
  shares_.push_back(0);
  // Paper §4: "if the added server increases k such that there are fewer
  // than 2^(ceil(lg k)+1) partitions, the algorithm re-partitions the unit
  // interval" — a refinement that moves no existing load (Fig. 3).
  while (partitions_.size() < required_partitions(shares_.size())) {
    split_partitions();
  }
  check_invariants();
  return id;
}

std::vector<UnitPoint::raw_type> RegionMap::normalize_shares(
    const std::vector<double>& weights) {
  ANU_REQUIRE(!weights.empty());
  double sum = 0.0;
  for (double w : weights) {
    ANU_REQUIRE(w >= 0.0);
    sum += w;
  }
  ANU_REQUIRE(sum > 0.0);

  std::vector<UnitPoint::raw_type> out(weights.size(), 0);
  const auto half = static_cast<double>(kHalfRaw);
  UnitPoint::raw_type assigned = 0;
  std::size_t largest = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    out[i] = static_cast<UnitPoint::raw_type>(half * (weights[i] / sum));
    assigned += out[i];
    if (out[i] > out[largest]) largest = i;
  }
  // Double rounding can land a hair on either side of the exact total; the
  // discrepancy (a few raw units of 2^-63 each) goes onto the largest share.
  if (assigned <= kHalfRaw) {
    out[largest] += kHalfRaw - assigned;
  } else {
    const UnitPoint::raw_type excess = assigned - kHalfRaw;
    ANU_ENSURE(out[largest] >= excess);
    out[largest] -= excess;
  }
  return out;
}

RegionMap::Snapshot RegionMap::snapshot() const {
  Snapshot out;
  out.reserve(partitions_.size());
  for (const Partition& part : partitions_) {
    out.emplace_back(part.owner.valid() ? part.owner.value()
                                        : ServerId::kInvalidValue,
                     part.occupied);
  }
  return out;
}

RegionMap RegionMap::from_snapshot(const Snapshot& snapshot,
                                   std::size_t server_count) {
  ANU_REQUIRE(!snapshot.empty());
  ANU_REQUIRE((snapshot.size() & (snapshot.size() - 1)) == 0);  // power of 2
  ANU_REQUIRE(snapshot.size() >= required_partitions(server_count));
  RegionMap map;
  map.psize_ = UnitPoint::kOneRaw / snapshot.size();
  map.partitions_.reserve(snapshot.size());
  map.shares_.assign(server_count, 0);
  for (const auto& [owner, occupied] : snapshot) {
    Partition part;
    if (owner != ServerId::kInvalidValue) {
      ANU_REQUIRE(owner < server_count);
      part.owner = ServerId(owner);
      part.occupied = occupied;
      map.shares_[owner] += occupied;
    } else {
      ANU_REQUIRE(occupied == 0);
    }
    map.partitions_.push_back(part);
  }
  map.check_invariants();
  return map;
}

bool RegionMap::operator==(const RegionMap& other) const {
  return psize_ == other.psize_ && partitions_ == other.partitions_ &&
         shares_ == other.shares_;
}

std::size_t RegionMap::shared_state_bytes() const {
  // Per partition: owner id (4 bytes) + occupied prefix (8 bytes); plus the
  // partition count itself (8 bytes). This is what the delegate distributes
  // after each round (§4: "the only replicated state needed").
  return partitions_.size() * 12 + 8;
}

void RegionMap::check_invariants() const {
  std::vector<UnitPoint::raw_type> tally(shares_.size(), 0);
  std::vector<std::size_t> partials(shares_.size(), 0);
  std::size_t free_count = 0;
  for (const Partition& part : partitions_) {
    if (!part.owner.valid()) {
      ANU_ENSURE(part.occupied == 0);
      ++free_count;
      continue;
    }
    ANU_ENSURE(part.occupied > 0 && part.occupied <= psize_);
    ANU_ENSURE(part.owner.value() < shares_.size());
    tally[part.owner.value()] += part.occupied;
    if (part.occupied < psize_) ++partials[part.owner.value()];
  }
  UnitPoint::raw_type total = 0;
  for (std::size_t s = 0; s < shares_.size(); ++s) {
    ANU_ENSURE(tally[s] == shares_[s]);
    ANU_ENSURE(partials[s] <= 1);  // at most one partial partition (§4)
    total += tally[s];
  }
  ANU_ENSURE(total == kHalfRaw);  // half-occupancy invariant (§4)
  ANU_ENSURE(free_count >= 1);    // a recovered server can always be placed
}

}  // namespace anu::core
