// The delegate's tuning rule: latency reports -> new mapped-region shares.
//
// Paper §4: "At the end of each interval, each server computes its latency
// in the past interval and reports it to an elected delegate server. The
// delegate server examines all latencies and comes up with an 'average'
// value for the whole system. The delegate scales down the mapped regions
// for servers above the average and scales up the mapped regions for
// servers below the average. The delegate is designed to be stateless and
// determines the new load configuration based solely on reported
// latencies."
//
// This paper leaves the exact update to ref [40]; per DESIGN.md we realize
// it as a *damped multiplicative update*: the system average is the
// completion-weighted mean latency, and each reporting server's share is
// multiplied by (average / latency)^alpha, clamped to [1/shrink_cap,
// growth_cap]. Idle servers (no completions — e.g. a server whose region
// currently catches no file set) grow by a modest fixed factor so they can
// re-enter service; shares are floored and renormalized to the
// half-occupancy total. All knobs are exposed and ablated in
// bench/ablation_tuner.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "balance/balancer.h"
#include "common/unit_point.h"
#include "obs/trace_sink.h"

namespace anu::core {

struct TunerConfig {
  /// Damping exponent of the multiplicative update (1 = undamped).
  double alpha = 0.3;
  /// Max multiplicative growth of a share in one round.
  double growth_cap = 1.5;
  /// Max multiplicative shrink of a share in one round (share may divide by
  /// at most this factor). The paper notes a skewed server may "reduce its
  /// mapped region by a large factor", so shrinking is allowed to be faster
  /// than growth.
  double shrink_cap = 3.0;
  /// Growth factor applied to a server that completed nothing this round.
  double idle_growth = 1.5;
  /// Share floor as a fraction of the equal share 1/(2k); keeps every up
  /// server addressable so it can be grown back later. Should be large
  /// enough that a floored server's region can still catch a file set, or
  /// it can never demonstrate recovery.
  double min_share_fraction = 0.1;
  /// Relative dead band around the average: a server within
  /// [avg/(1+band), avg*(1+band)] keeps its share. Realizes §5.3's
  /// "relatively conservative in moving load in response to short-term
  /// bursts" — heavy-tailed arrivals make single-interval latency noisy,
  /// and reacting to every wiggle would churn file sets in steady state.
  /// 1.0 (react only to >2x / <0.5x deviations) is robust across seeds and
  /// load levels; see bench/ablation_tuner.
  double dead_band = 1.0;
};

/// One server's input to the delegate round.
struct TunerInput {
  /// Current share of the half-occupancy total, as a weight (any scale).
  double current_share = 0.0;
  /// Report for the closing interval; nullopt for a down server.
  std::optional<balance::ServerReport> report;
};

/// Outcome of a delegate round.
struct TunerDecision {
  /// New share weights (same indexing as the input; 0 for down servers).
  /// Renormalized by the caller through RegionMap::normalize_shares.
  std::vector<double> weights;
  /// Completion-weighted system average latency this round (0 if no server
  /// completed anything).
  double system_average = 0.0;
  /// Servers flagged incompetent this round: share pinned at the floor
  /// while still reporting above-average latency (paper §5.2.2: "ANU
  /// randomization identifies such incompetent components and notifies
  /// administrators").
  std::vector<std::uint32_t> incompetent;
};

/// Pure function of (inputs, config) — the delegate is stateless, so a
/// newly elected delegate running the same protocol on the same reports
/// reaches the same configuration (paper §4). When `trace` is non-null a
/// delegate_round event (reporting count, completions, system average) is
/// emitted at `now`; tracing is observational and never alters the
/// decision.
[[nodiscard]] TunerDecision run_delegate_round(
    const std::vector<TunerInput>& inputs, const TunerConfig& config,
    obs::TraceSink* trace = nullptr, SimTime now = 0.0);

}  // namespace anu::core
