#include "core/delegate.h"

#include "common/assert.h"

namespace anu::core {

DelegateElection::DelegateElection(std::size_t server_count)
    : up_(server_count, true) {
  ANU_REQUIRE(server_count > 0);
}

ServerId DelegateElection::current() const {
  for (std::uint32_t s = 0; s < up_.size(); ++s) {
    if (up_[s]) return ServerId(s);
  }
  return ServerId::invalid();  // whole cluster down
}

void DelegateElection::on_server_failed(ServerId id) {
  ANU_REQUIRE(id.value() < up_.size());
  ANU_REQUIRE(up_[id.value()]);
  const ServerId before = current();
  up_[id.value()] = false;
  notify(before);
}

void DelegateElection::on_server_recovered(ServerId id) {
  ANU_REQUIRE(id.value() < up_.size());
  ANU_REQUIRE(!up_[id.value()]);
  const ServerId before = current();
  up_[id.value()] = true;
  notify(before);
}

void DelegateElection::on_server_added() {
  const ServerId before = current();
  up_.push_back(true);
  notify(before);
}

void DelegateElection::notify(ServerId before) {
  if (on_change && current() != before) on_change(current(), before);
}

std::size_t DelegateElection::up_count() const {
  std::size_t n = 0;
  for (bool b : up_) n += b ? 1 : 0;
  return n;
}

}  // namespace anu::core
