#include "core/delegate.h"

#include "common/assert.h"

namespace anu::core {

DelegateElection::DelegateElection(std::size_t server_count)
    : up_(server_count, true) {
  ANU_REQUIRE(server_count > 0);
}

ServerId DelegateElection::current() const {
  for (std::uint32_t s = 0; s < up_.size(); ++s) {
    if (up_[s]) return ServerId(s);
  }
  return ServerId::invalid();  // whole cluster down
}

void DelegateElection::on_server_failed(ServerId id) {
  ANU_REQUIRE(id.value() < up_.size());
  ANU_REQUIRE(up_[id.value()]);
  up_[id.value()] = false;
}

void DelegateElection::on_server_recovered(ServerId id) {
  ANU_REQUIRE(id.value() < up_.size());
  ANU_REQUIRE(!up_[id.value()]);
  up_[id.value()] = true;
}

void DelegateElection::on_server_added() { up_.push_back(true); }

std::size_t DelegateElection::up_count() const {
  std::size_t n = 0;
  for (bool b : up_) n += b ? 1 : 0;
  return n;
}

}  // namespace anu::core
