#include "core/tuner.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace anu::core {

TunerDecision run_delegate_round(const std::vector<TunerInput>& inputs,
                                 const TunerConfig& config,
                                 obs::TraceSink* trace, SimTime now) {
  ANU_REQUIRE(!inputs.empty());
  ANU_REQUIRE(config.alpha > 0.0);
  ANU_REQUIRE(config.growth_cap >= 1.0);
  ANU_REQUIRE(config.shrink_cap >= 1.0);
  ANU_REQUIRE(config.idle_growth >= 1.0);

  TunerDecision decision;
  decision.weights.assign(inputs.size(), 0.0);

  // System "average": completion-weighted mean of the reported latencies —
  // the overall mean request latency of the closing interval, computable
  // from the reports alone (the delegate knows nothing else).
  double weighted_sum = 0.0;
  std::size_t completions = 0;
  std::size_t up_servers = 0;
  for (const TunerInput& in : inputs) {
    if (!in.report) continue;
    ++up_servers;
    weighted_sum +=
        in.report->mean_latency * static_cast<double>(in.report->completed);
    completions += in.report->completed;
  }
  ANU_REQUIRE(up_servers > 0);
  const double average =
      completions > 0 ? weighted_sum / static_cast<double>(completions) : 0.0;
  decision.system_average = average;
  if (trace) {
    trace->emit(now, obs::EventType::kDelegateRound,
                static_cast<std::uint32_t>(up_servers),
                static_cast<std::uint32_t>(completions), 0, average);
  }

  // Equal share in the same weight scale as current shares.
  double share_sum = 0.0;
  for (const TunerInput& in : inputs) {
    if (in.report) share_sum += in.current_share;
  }
  ANU_REQUIRE(share_sum > 0.0);
  const double floor_share =
      config.min_share_fraction * share_sum / static_cast<double>(up_servers);

  for (std::size_t s = 0; s < inputs.size(); ++s) {
    const TunerInput& in = inputs[s];
    if (!in.report) continue;  // down: weight stays 0
    double factor;
    if (in.report->completed == 0 || average <= 0.0) {
      // Idle server (its region caught no file set) — nudge it up so a
      // mis-shrunk server can climb back; bounded so it cannot destabilize
      // a balanced placement.
      factor = config.idle_growth;
    } else if (in.report->mean_latency <= average * (1.0 + config.dead_band) &&
               in.report->mean_latency >= average / (1.0 + config.dead_band)) {
      // Within the dead band: close enough to the system average that the
      // deviation is indistinguishable from burst noise. Hold position.
      factor = 1.0;
    } else {
      factor = std::pow(average / in.report->mean_latency, config.alpha);
      factor = std::clamp(factor, 1.0 / config.shrink_cap, config.growth_cap);
    }
    double w = in.current_share * factor;
    if (w <= floor_share) {
      w = floor_share;
      if (in.report->completed > 0 && in.report->mean_latency > average) {
        // Pinned at the floor yet still too slow for the load its sliver of
        // the interval attracts: an incompetent component (§5.2.2).
        decision.incompetent.push_back(static_cast<std::uint32_t>(s));
      }
    }
    decision.weights[s] = w;
  }
  return decision;
}

}  // namespace anu::core
