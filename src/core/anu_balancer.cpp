#include "core/anu_balancer.h"

#include <algorithm>

#include "common/assert.h"
#include "common/log.h"

namespace anu::core {

AnuBalancer::AnuBalancer(const AnuConfig& config, std::size_t server_count)
    : config_(config),
      family_(config.hash_seed),
      regions_(server_count),
      up_(server_count, true),
      pending_(server_count) {
  ANU_REQUIRE(config.placement_choices >= 1 && config.placement_choices <= 8);
}

void AnuBalancer::register_file_sets(
    const std::vector<workload::FileSet>& file_sets) {
  names_.clear();
  names_.reserve(file_sets.size());
  weights_.clear();
  weights_.reserve(file_sets.size());
  for (const auto& fs : file_sets) {
    names_.push_back(fs.name);
    weights_.push_back(fs.weight > 0.0 ? fs.weight : 1.0);
  }
  placement_ = resolve_all();
}

ServerId AnuBalancer::server_for(FileSetId id) const {
  ANU_REQUIRE(id.value() < placement_.size());
  return placement_[id.value()];
}

void AnuBalancer::report(ServerId server,
                         const balance::ServerReport& report) {
  ANU_REQUIRE(server.value() < pending_.size());
  ANU_REQUIRE(up_[server.value()]);
  pending_[server.value()] = report;
}

AnuBalancer::Lookup AnuBalancer::locate(std::string_view name) const {
  for (std::uint32_t r = 0; r < config_.max_probe_rounds; ++r) {
    const UnitPoint p = family_.unit_point(name, r);
    if (auto owner = regions_.owner_at(p)) {
      return Lookup{*owner, r + 1};
    }
  }
  // Mapped regions cover exactly half the interval, so the probability of
  // reaching here is 2^-max_probe_rounds — it indicates corruption.
  ANU_ENSURE(false && "ANU lookup exhausted the hash family");
  return {};
}

bool AnuBalancer::server_up(ServerId id) const {
  ANU_REQUIRE(id.value() < up_.size());
  return up_[id.value()];
}

std::vector<AnuBalancer::Lookup> AnuBalancer::candidate_set(
    std::string_view name, std::uint32_t count) const {
  ANU_REQUIRE(count >= 1);
  std::vector<Lookup> found;
  found.reserve(count);
  for (std::uint32_t r = 0;
       r < config_.max_probe_rounds && found.size() < count; ++r) {
    const UnitPoint p = family_.unit_point(name, r);
    const auto owner = regions_.owner_at(p);
    if (!owner) continue;
    bool seen = false;
    for (const Lookup& earlier : found) {
      if (earlier.server == *owner) {
        seen = true;
        break;
      }
    }
    if (!seen) found.push_back(Lookup{*owner, r + 1});
  }
  ANU_ENSURE(!found.empty());  // half the interval is mapped
  return found;
}

AnuBalancer::Candidates AnuBalancer::candidates(std::string_view name) const {
  const auto set = candidate_set(name, 2);
  Candidates result;
  result.first = set[0];
  if (set.size() > 1) result.second = set[1];
  return result;
}

std::vector<ServerId> AnuBalancer::resolve_all() const {
  std::vector<ServerId> placed;
  placed.reserve(names_.size());
  if (config_.placement_choices <= 1) {
    for (const std::string& name : names_) {
      placed.push_back(locate(name).server);
    }
    return placed;
  }
  // d-choice heuristic: greedily (in file-set order, deterministic on
  // every node) pick the candidate whose server carries the least
  // registered weight relative to its share. The winning choice index per
  // file set is what the cluster replicates alongside the region table.
  std::vector<double> load(regions_.server_count(), 0.0);
  const auto shares = regions_.shares();
  auto pressure = [&](ServerId s, double extra) {
    const double share = shares[s.value()].to_double();
    return (load[s.value()] + extra) / std::max(share, 1e-12);
  };
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const auto set = candidate_set(names_[i], config_.placement_choices);
    ServerId pick = set[0].server;
    double best = pressure(pick, weights_[i]);
    for (std::size_t c = 1; c < set.size(); ++c) {
      const double p = pressure(set[c].server, weights_[i]);
      if (p < best) {
        best = p;
        pick = set[c].server;
      }
    }
    load[pick.value()] += weights_[i];
    placed.push_back(pick);
  }
  return placed;
}

std::vector<double> AnuBalancer::up_share_weights() const {
  const auto shares = regions_.shares();
  std::vector<double> weights(shares.size(), 0.0);
  for (std::size_t s = 0; s < shares.size(); ++s) {
    if (up_[s]) weights[s] = static_cast<double>(shares[s].raw());
  }
  return weights;
}

balance::RebalanceResult AnuBalancer::apply_targets(
    const std::vector<UnitPoint::raw_type>& targets) {
  const std::vector<ServerId> before = placement_;
  regions_.rebalance(targets);
  placement_ = resolve_all();
  return balance::diff_placement(before, placement_);
}

balance::RebalanceResult AnuBalancer::tune() {
  ++rounds_;
  std::vector<TunerInput> inputs(up_.size());
  const auto shares = regions_.shares();
  for (std::size_t s = 0; s < up_.size(); ++s) {
    inputs[s].current_share = static_cast<double>(shares[s].raw());
    if (up_[s]) {
      // An up server that filed no report completed nothing this interval.
      inputs[s].report =
          pending_[s].value_or(balance::ServerReport{0.0, 0});
    }
    pending_[s].reset();
  }
  TunerDecision decision = run_delegate_round(inputs, config_.tuner);
  last_average_ = decision.system_average;
  last_incompetent_ = decision.incompetent;
  for (std::uint32_t s : decision.incompetent) {
    ANU_LOG_INFO("server %u flagged incompetent (share pinned at floor)", s);
  }
  return apply_targets(RegionMap::normalize_shares(decision.weights));
}

balance::RebalanceResult AnuBalancer::on_server_failed(ServerId id) {
  ANU_REQUIRE(id.value() < up_.size());
  ANU_REQUIRE(up_[id.value()]);
  up_[id.value()] = false;
  pending_[id.value()].reset();
  // Surviving servers scale up proportionally to absorb the failed share,
  // restoring the half-occupancy invariant (§4).
  std::vector<double> weights = up_share_weights();
  ANU_REQUIRE(std::any_of(weights.begin(), weights.end(),
                          [](double w) { return w > 0.0; }));
  return apply_targets(RegionMap::normalize_shares(weights));
}

balance::RebalanceResult AnuBalancer::on_server_recovered(ServerId id) {
  ANU_REQUIRE(id.value() < up_.size());
  ANU_REQUIRE(!up_[id.value()]);
  up_[id.value()] = true;
  // "When a server recovers or is added, it is assigned to a free partition
  // and all other servers are scaled back" (§4): the newcomer starts with
  // one partition's worth of the interval — it carries no capability
  // knowledge, and the delegate grows it from there.
  std::vector<double> weights = up_share_weights();
  weights[id.value()] =
      static_cast<double>(regions_.partition_size().raw());
  return apply_targets(RegionMap::normalize_shares(weights));
}

balance::RebalanceResult AnuBalancer::on_server_added(ServerId id) {
  // Commissioning is handled like recovery (§4), except the slot is new and
  // the partition table may need to re-partition first (Fig. 3).
  const ServerId slot = regions_.add_server_slot();
  ANU_REQUIRE(slot == id);
  up_.push_back(false);
  pending_.emplace_back();
  return on_server_recovered(id);
}

std::size_t AnuBalancer::shared_state_bytes() const {
  // d-choice placement replicates ceil(lg d) choice bits per file set on
  // top of the region table.
  std::size_t bits_per_set = 0;
  for (std::uint32_t span = 1; span < config_.placement_choices; span *= 2) {
    ++bits_per_set;
  }
  const std::size_t choice_bytes =
      (names_.size() * bits_per_set + 7) / 8;
  return regions_.shared_state_bytes() + choice_bytes;
}

}  // namespace anu::core
