// AnuBalancer — the paper's load-management system.
//
// Ties together the three ANU mechanisms (§4):
//   * addressing: file-set names are hashed into the unit interval with the
//     agreed hash family, re-hashing (next family member) until the point
//     lands in some server's mapped region — expected 2 probes under the
//     half-occupancy invariant, probability 2^-r of needing more than r;
//   * the partition table (RegionMap) holding every server's mapped region
//     — the only replicated state;
//   * the stateless delegate (tuner.h) that rescales mapped regions from
//     per-interval latency reports.
//
// Placement is a pure function of (hash family, region map): any node can
// locate any file set with no lookup table, which is the addressing
// advantage over virtual processors (§5.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "balance/balancer.h"
#include "core/region_map.h"
#include "core/tuner.h"
#include "hash/hash_family.h"

namespace anu::core {

struct AnuConfig {
  TunerConfig tuner;
  std::uint64_t hash_seed = 0x616e755f68617368ULL;
  /// Safety bound on re-hash probes. The miss chance is 2^-r after r
  /// rounds, so 64 rounds puts a failed lookup beyond reach; hitting the
  /// bound aborts (it would mean a corrupted region map).
  std::uint32_t max_probe_rounds = 64;
  /// Placement choices per file set (1..8). 1 = first mapped probe wins
  /// (plain re-hash addressing). d >= 2 generalizes the SIEVE
  /// multiple-choice heuristic §4 leans on for the ceil(m/n + 1) load
  /// bound: the first d probes hitting *distinct* servers are candidates
  /// and the file set goes to the candidate with the lightest
  /// weight-per-share; the winning choice index is ceil(lg d) replicated
  /// bits per file set (counted in shared_state_bytes).
  std::uint32_t placement_choices = 1;
};

class AnuBalancer final : public balance::LoadBalancer {
 public:
  AnuBalancer(const AnuConfig& config, std::size_t server_count);

  [[nodiscard]] std::string name() const override {
    return "anu-randomization";
  }

  void register_file_sets(
      const std::vector<workload::FileSet>& file_sets) override;
  [[nodiscard]] ServerId server_for(FileSetId id) const override;
  void report(ServerId server, const balance::ServerReport& report) override;
  balance::RebalanceResult tune() override;
  balance::RebalanceResult on_server_failed(ServerId id) override;
  balance::RebalanceResult on_server_recovered(ServerId id) override;
  balance::RebalanceResult on_server_added(ServerId id) override;
  [[nodiscard]] std::size_t shared_state_bytes() const override;

  /// Stateless lookup by name: the addressing path any cluster node runs.
  /// Also reports how many hash probes were needed (paper §4: "On average,
  /// the system requires two probes to assign a file set").
  struct Lookup {
    ServerId server;
    std::uint32_t probes = 0;
  };
  [[nodiscard]] Lookup locate(std::string_view name) const;

  /// Both placement candidates of a name under the two-choice heuristic:
  /// the first probes landing on two distinct servers (second invalid when
  /// only one server is mapped).
  struct Candidates {
    Lookup first;
    Lookup second;
  };
  [[nodiscard]] Candidates candidates(std::string_view name) const;

  /// First `count` probes landing on distinct servers (may return fewer
  /// when fewer distinct servers are mapped). candidates() is the
  /// count == 2 special case.
  [[nodiscard]] std::vector<Lookup> candidate_set(std::string_view name,
                                                  std::uint32_t count) const;

  /// Read access for tests, diagnostics and the figure harnesses.
  [[nodiscard]] const RegionMap& region_map() const { return regions_; }
  [[nodiscard]] bool server_up(ServerId id) const;
  [[nodiscard]] double last_system_average() const { return last_average_; }
  [[nodiscard]] const std::vector<std::uint32_t>& last_incompetent() const {
    return last_incompetent_;
  }
  [[nodiscard]] std::uint64_t tuning_rounds() const { return rounds_; }

 private:
  balance::RebalanceResult apply_targets(
      const std::vector<UnitPoint::raw_type>& targets);
  [[nodiscard]] std::vector<ServerId> resolve_all() const;
  [[nodiscard]] std::vector<double> up_share_weights() const;

  AnuConfig config_;
  HashFamily family_;
  RegionMap regions_;
  std::vector<bool> up_;
  std::vector<std::string> names_;           // per file set
  std::vector<double> weights_;              // per file set
  std::vector<ServerId> placement_;          // per file set
  std::vector<std::optional<balance::ServerReport>> pending_;  // per server
  double last_average_ = 0.0;
  std::vector<std::uint32_t> last_incompetent_;
  std::uint64_t rounds_ = 0;
};

}  // namespace anu::core
