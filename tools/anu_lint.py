#!/usr/bin/env python3
"""Determinism and hygiene linter for the ANU tree (docs/static-analysis.md).

The repo's headline guarantee is that every experiment artifact is a pure
function of (config, seed): batch and matrix JSON are byte-identical at any
--jobs level. That only holds if result-affecting code never consults an
ambient source of nondeterminism. This linter statically bans the known
offenders in the result-affecting directories (src/sim, src/core,
src/proto, src/balance, src/driver):

  wall-clock       std::chrono::{system,steady,high_resolution}_clock,
                   time(), clock(), gettimeofday, clock_gettime,
                   localtime/gmtime — simulated time comes from the event
                   kernel, wall time is for bench/ and tools/ only.
  raw-rng          std::rand / srand / random_device — all randomness must
                   flow through common/rng (seeded, substream-splittable).
  unordered-iter   iteration over std::unordered_map/unordered_set —
                   traversal order is libstdc++-version- and salt-dependent,
                   so anything aggregated from it is not reproducible.
  ptr-key-container std::map/std::set keyed by pointer — ordered by
                   allocator-assigned addresses, i.e. by ASLR.
  pool-order       direct common/thread_pool use — result-affecting code
                   must go through driver::run_parallel/run_indexed, whose
                   pre-sized-slot contract makes results independent of
                   completion order.

Plus two cross-checks that keep the test and bench plumbing honest:

  test-registration every tests/*_test.cpp is registered in
                   tests/CMakeLists.txt (an unregistered test silently
                   never runs in CI).
  baseline-missing / baseline-orphan — the BENCH_*.json files the CI
                   bench-smoke job diffs against all exist in
                   bench/baselines, and nothing stale lingers there.

Suppressing a finding requires a justification on the same or previous
line:   // anu-lint: allow(<rule>) <why this one is safe>
A bare allow() without a reason is itself an error.

Usage: tools/anu_lint.py [--root DIR] [--list-rules]
Exit status: 0 clean, 1 findings, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RESULT_DIRS = (
    "src/sim",
    "src/core",
    "src/proto",
    "src/balance",
    "src/driver",
)

# src/runtime hosts the realtime clock and UDP transport: wall-clock reads
# are its whole job, so the wall-clock rule is waived there. Every other
# rule still applies — the runtime must stay as reproducible as real time
# allows (seeded RNG, ordered iteration, no ad-hoc pools).
RUNTIME_DIRS = ("src/runtime",)

# Files allowed to touch the thread pool directly: the sanctioned wrappers
# whose contract (pre-sized result slots, sequential aggregation) is what
# makes pool use deterministic for everyone else.
POOL_ALLOWLIST = {"src/driver/sweep.cpp", "src/driver/sweep.h"}

SOURCE_RULES: list[tuple[str, re.Pattern[str], str]] = [
    (
        "wall-clock",
        re.compile(
            # clock() and time() are matched as calls with zero / one-ish
            # args so declarations of variables *named* clock (e.g.
            # `sim::SimClock clock(sim);`) do not false-positive.
            r"std::chrono::(?:system|steady|high_resolution)_clock"
            r"|\btime\s*\(|\bclock\s*\(\s*\)|\bgettimeofday\b"
            r"|\bclock_gettime\b|\blocaltime\b|\bgmtime\b"
        ),
        "wall-clock source in result-affecting code (use simulated time)",
    ),
    (
        "raw-rng",
        re.compile(r"std::rand\b|\bsrand\s*\(|\brand\s*\(|\brandom_device\b"),
        "raw RNG in result-affecting code (use common/rng substreams)",
    ),
    (
        "ptr-key-container",
        re.compile(r"std::(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*"),
        "pointer-keyed ordered container (iteration order = ASLR)",
    ),
]

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s+(\w+)\s*[;{=(]"
)
# Range-for only: the colon must not be part of `::`, and a classic
# three-clause for (which contains `;`) is rejected after the match.
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?(?<!:):(?!:)\s*([^)]+)\)")
ALLOW_RE = re.compile(r"anu-lint:\s*allow\(([\w-]+)\)\s*(.*)")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self, root: Path) -> str:
        try:
            rel = self.path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text: str) -> list[str]:
    """Blanks comments and string/char literals, preserving line structure.

    Keeps column positions stable so findings point at real code. Handles
    //, /* */, "...", '...' with escapes; raw strings are treated as plain
    strings (good enough: their contents are blanked either way until a
    quote, and none of the linted code uses embedded quotes in raw strings).
    """
    out: list[str] = []
    state = "code"  # code | line_comment | block_comment | dquote | squote
    line_chars: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        nxt = text[i + 1] if i + 1 < len(text) else ""
        if ch == "\n":
            out.append("".join(line_chars))
            line_chars = []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                line_chars.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                line_chars.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "dquote"
                line_chars.append(" ")
                i += 1
                continue
            if ch == "'":
                state = "squote"
                line_chars.append(" ")
                i += 1
                continue
            line_chars.append(ch)
        elif state in ("dquote", "squote"):
            if ch == "\\":
                line_chars.append("  ")
                i += 2
                continue
            if (state == "dquote" and ch == '"') or (
                state == "squote" and ch == "'"
            ):
                state = "code"
            line_chars.append(" ")
        else:  # comments
            if state == "block_comment" and ch == "*" and nxt == "/":
                state = "code"
                line_chars.append("  ")
                i += 2
                continue
            line_chars.append(" ")
        i += 1
    if line_chars:
        out.append("".join(line_chars))
    return out


def suppressions(raw_lines: list[str], findings: list[Finding]) -> list[Finding]:
    """Applies `// anu-lint: allow(rule) reason` to same/next-line findings."""
    allowed: dict[int, set[str]] = {}
    kept: list[Finding] = []
    for lineno, line in enumerate(raw_lines, 1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if not reason:
            kept.append(
                Finding(
                    Path("."),
                    lineno,
                    "bare-allow",
                    f"allow({rule}) without a justification",
                )
            )
            continue
        allowed.setdefault(lineno, set()).add(rule)
        allowed.setdefault(lineno + 1, set()).add(rule)
    for f in findings:
        if f.rule in allowed.get(f.line, set()):
            continue
        kept.append(f)
    return kept


def lint_source_file(path: Path, skip_rules: frozenset[str] = frozenset()
                     ) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    code_lines = strip_code(raw)

    findings: list[Finding] = []
    for lineno, line in enumerate(code_lines, 1):
        for rule, pattern, message in SOURCE_RULES:
            if rule in skip_rules:
                continue
            if pattern.search(line):
                findings.append(Finding(path, lineno, rule, message))

    # unordered-iter: range-for over a variable this file declares as an
    # unordered container, or directly over an unordered_* expression.
    code = "\n".join(code_lines)
    unordered_vars = set(UNORDERED_DECL_RE.findall(code))
    for lineno, line in enumerate(code_lines, 1):
        for m in RANGE_FOR_RE.finditer(line):
            expr = m.group(1).strip()
            if ";" in expr:
                continue
            name = re.split(r"[.\->\[(]", expr, 1)[0].strip().lstrip("*&")
            if "unordered_" in expr or name in unordered_vars:
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "unordered-iter",
                        "iteration over unordered container feeds results "
                        "(order is implementation-defined)",
                    )
                )

    parts = path.parts
    rel = None
    if "src" in parts:  # path under the linted tree's src/ (last occurrence)
        idx = len(parts) - 1 - parts[::-1].index("src")
        rel = "/".join(parts[idx:])
    if rel not in POOL_ALLOWLIST:
        # Only the type and its header: method-name matching (e.g. .submit)
        # would misfire on cluster::Cluster::submit, the simulated dispatch
        # path. You cannot reach a pool without naming ThreadPool somewhere
        # in the translation unit.
        for lineno, line in enumerate(code_lines, 1):
            if re.search(r'#\s*include\s*"common/thread_pool\.h"', line) or \
               re.search(r"\bThreadPool\b", line):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "pool-order",
                        "direct thread-pool use in result-affecting code "
                        "(go through driver::run_parallel/run_indexed)",
                    )
                )

    out = suppressions(raw_lines, findings)
    for f in out:
        if f.rule == "bare-allow":
            f.path = path
    return out


def check_test_registration(root: Path) -> list[Finding]:
    cmake = root / "tests" / "CMakeLists.txt"
    if not cmake.exists():
        return []
    registered = set()
    text = cmake.read_text(encoding="utf-8")
    for m in re.finditer(r"(?:anu_test|add_executable)\s*\(\s*(\w+)", text):
        registered.add(m.group(1))
    findings = []
    for test in sorted((root / "tests").glob("*_test.cpp")):
        if test.stem not in registered:
            findings.append(
                Finding(
                    test,
                    1,
                    "test-registration",
                    f"{test.name} is not registered in tests/CMakeLists.txt "
                    "(it will never run in CI)",
                )
            )
    return findings


def check_baselines(root: Path) -> list[Finding]:
    ci = root / ".github" / "workflows" / "ci.yml"
    baselines_dir = root / "bench" / "baselines"
    if not ci.exists() or not baselines_dir.exists():
        return []
    text = ci.read_text(encoding="utf-8")
    referenced: set[str] = set(re.findall(r"BENCH_\w+\.json", text))
    # Expand shell loops of the form `for b in a b c; do ... BENCH_$b.json`.
    if "BENCH_$b.json" in text:
        referenced.discard("BENCH_$b.json")  # not a literal file
        for m in re.finditer(r"for b in ([^;\n]+);", text):
            for name in m.group(1).split():
                referenced.add(f"BENCH_{name}.json")
    existing = {p.name for p in baselines_dir.glob("BENCH_*.json")}
    findings = []
    for name in sorted(referenced - existing):
        findings.append(
            Finding(
                ci,
                1,
                "baseline-missing",
                f"CI references bench/baselines/{name} which does not exist",
            )
        )
    for name in sorted(existing - referenced):
        findings.append(
            Finding(
                baselines_dir / name,
                1,
                "baseline-orphan",
                f"{name} is not referenced by .github/workflows/ci.yml "
                "(stale baseline?)",
            )
        )
    return findings


def run(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    tiers = [(RESULT_DIRS, frozenset()), (RUNTIME_DIRS, frozenset({"wall-clock"}))]
    for dirs, skip_rules in tiers:
        for rel in dirs:
            base = root / rel
            if not base.exists():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in (".cpp", ".h", ".cc", ".hpp"):
                    findings.extend(lint_source_file(path, skip_rules))
    findings.extend(check_test_registration(root))
    findings.extend(check_baselines(root))
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="tree to lint (default: this repo)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    args = parser.parse_args()

    if args.list_rules:
        for rule, _, message in SOURCE_RULES:
            print(f"{rule}: {message}")
        print("unordered-iter: iteration over unordered container")
        print("pool-order: direct thread-pool use outside driver/sweep")
        print("test-registration: tests/*_test.cpp missing from CMake")
        print("baseline-missing/baseline-orphan: CI vs bench/baselines drift")
        return 0

    root = args.root
    if not root.is_dir():
        print(f"anu_lint: no such directory: {root}", file=sys.stderr)
        return 2
    findings = run(root)
    for f in findings:
        print(f.render(root))
    if findings:
        print(f"anu_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("anu_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
