// anu_trace — inspect and synthesize workload traces.
//
// Usage:
//   anu_trace synthesize <out.trace> [file_sets] [requests] [minutes] [seed]
//   anu_trace info <trace-file>
//   anu_trace head <trace-file> [count]
//
// The text trace format is documented in src/workload/trace.h; traces made
// here replay through `anu_sim` (trace_file key) or examples/trace_replay.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/stats.h"
#include "common/table.h"
#include "workload/trace.h"

using namespace anu;
using namespace anu::workload;

namespace {

int synthesize(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "synthesize needs an output path\n");
    return 2;
  }
  TraceSynthConfig config;
  if (argc > 3) config.file_set_count = std::strtoul(argv[3], nullptr, 10);
  if (argc > 4) config.request_count = std::strtoul(argv[4], nullptr, 10);
  if (argc > 5) config.duration = std::strtod(argv[5], nullptr) * 60.0;
  if (argc > 6) config.seed = std::strtoull(argv[6], nullptr, 10);
  if (config.file_set_count == 0 || config.request_count == 0 ||
      config.duration <= 0.0) {
    std::fprintf(stderr, "invalid synthesize parameters\n");
    return 2;
  }
  const auto trace = synthesize_trace(config);
  if (!write_trace_file(argv[2], trace)) {
    std::fprintf(stderr, "error: cannot write %s\n", argv[2]);
    return 1;
  }
  std::printf("wrote %s: %zu requests, %zu file sets, %.1f min\n", argv[2],
              trace.request_count(), trace.file_set_count(),
              trace.span() / 60.0);
  return 0;
}

int info(const char* path) {
  TraceParseError error;
  const auto trace = read_trace_file(path, &error);
  if (!trace) {
    std::fprintf(stderr, "error: %s:%zu: %s\n", path, error.line,
                 error.message.c_str());
    return 1;
  }

  std::printf("%s: %zu requests, %zu file sets, span %.1f min, total demand "
              "%.1f unit-speed seconds\n",
              path, trace->request_count(), trace->file_set_count(),
              trace->span() / 60.0, trace->total_demand());

  // Inter-arrival burstiness across the whole trace.
  RunningStats gaps;
  double last = 0.0;
  for (const auto& r : trace->requests()) {
    gaps.add(r.arrival - last);
    last = r.arrival;
  }
  if (gaps.count() > 1 && gaps.mean() > 0.0) {
    std::printf("inter-arrival mean %.4f s, CV %.2f "
                "(1.0 = Poisson; higher = burstier)\n",
                gaps.mean(), gaps.stddev() / gaps.mean());
  }

  Table table({"fileset", "name", "requests", "share_pct", "demand",
               "weight"});
  const auto counts = trace->requests_per_file_set();
  const auto demand = trace->demand_per_file_set();
  for (std::size_t i = 0; i < trace->file_set_count(); ++i) {
    table.add_row(
        {std::to_string(i), trace->file_sets()[i].name,
         std::to_string(counts[i]),
         format_double(100.0 * static_cast<double>(counts[i]) /
                           static_cast<double>(trace->request_count()),
                       2),
         format_double(demand[i], 1),
         format_double(trace->file_sets()[i].weight, 1)});
  }
  table.print(std::cout);
  return 0;
}

int head(const char* path, std::size_t count) {
  TraceParseError error;
  const auto trace = read_trace_file(path, &error);
  if (!trace) {
    std::fprintf(stderr, "error: %s:%zu: %s\n", path, error.line,
                 error.message.c_str());
    return 1;
  }
  Table table({"arrival_s", "fileset", "demand_s"});
  for (std::size_t i = 0; i < std::min(count, trace->request_count()); ++i) {
    const auto& r = trace->requests()[i];
    table.add_row({format_double(r.arrival, 4),
                   trace->file_set(r.file_set).name,
                   format_double(r.demand, 5)});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "synthesize") == 0) {
    return synthesize(argc, argv);
  }
  if (argc == 3 && std::strcmp(argv[1], "info") == 0) {
    return info(argv[2]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "head") == 0) {
    const std::size_t count =
        argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 10;
    return head(argv[2], count);
  }
  std::fprintf(stderr,
               "usage: %s synthesize <out> [file_sets] [requests] [minutes] "
               "[seed]\n"
               "       %s info <trace>\n"
               "       %s head <trace> [count]\n",
               argv[0], argv[0], argv[0]);
  return 2;
}
