// bench_compare — regression gate over BENCH_*.json artifacts.
//
// Usage:
//   bench_compare [options] <baseline> <candidate>
//
// `baseline` and `candidate` are either two result files (bench_report.h
// schema "anu.bench") or two directories, in which case every
// BENCH_*.json in the candidate directory is compared against the
// same-named file in the baseline directory. A candidate file with no
// baseline counterpart is reported as new (not a failure) so adding a
// benchmark never blocks; a baseline file with no candidate is reported as
// missing and fails, so benchmarks cannot silently vanish from the run.
//
// Options:
//   --threshold <metric>=<pct>  allowed regression for one metric, percent;
//                               repeatable. Defaults: wall_time_s=10,
//                               events_per_sec=10, peak_rss_bytes=20.
//   --quiet                     only print regressions
//
// Direction is per metric: wall_time_s and peak_rss_bytes regress upward,
// events_per_sec regresses downward. Metrics absent from either file, or 0
// in the baseline (a harness with no natural event unit), are skipped.
// Exit status: 0 = within thresholds, 1 = regression (the CI gate), 2 =
// usage or I/O error. Baseline-refresh procedure: docs/ci.md.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/json.h"

namespace {

namespace fs = std::filesystem;
using anu::Table;
using anu::obs::Json;

struct Metric {
  const char* name;
  bool higher_is_worse;
  double default_threshold_pct;
};

constexpr Metric kMetrics[] = {
    {"wall_time_s", true, 10.0},
    {"events_per_sec", false, 10.0},
    {"peak_rss_bytes", true, 20.0},
};

struct Options {
  std::vector<std::pair<std::string, double>> thresholds;
  bool quiet = false;

  [[nodiscard]] double threshold_for(const Metric& metric) const {
    for (const auto& [name, pct] : thresholds) {
      if (name == metric.name) return pct;
    }
    return metric.default_threshold_pct;
  }
};

std::optional<Json> load_json(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  std::string error;
  auto doc = Json::parse(buffer.str(), &error);
  if (!doc) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 error.c_str());
  }
  return doc;
}

/// Compares one baseline/candidate pair; appends rows, returns the number
/// of regressions.
int compare_files(const std::string& base_path, const std::string& cand_path,
                  const Options& options, Table& table) {
  const auto base = load_json(base_path);
  const auto cand = load_json(cand_path);
  if (!base || !cand) return 1;  // unreadable artifact = failed gate
  const Json* name = cand->find("name");
  const std::string label =
      name && !name->is_null() ? name->as_string() : cand_path;
  int regressions = 0;
  for (const Metric& metric : kMetrics) {
    const Json* b = base->find(metric.name);
    const Json* c = cand->find(metric.name);
    if (!b || !c) continue;
    const double bv = b->as_number();
    const double cv = c->as_number();
    if (bv == 0.0) continue;  // no baseline signal for this metric
    const double change_pct = (cv - bv) / bv * 100.0;
    const double regression_pct =
        metric.higher_is_worse ? change_pct : -change_pct;
    const double allowed = options.threshold_for(metric);
    const bool regressed = regression_pct > allowed;
    if (regressed) ++regressions;
    if (regressed || !options.quiet) {
      table.add_row({label, metric.name, anu::format_double(bv, 4),
                     anu::format_double(cv, 4),
                     anu::format_double(change_pct, 1) + "%",
                     anu::format_double(allowed, 1) + "%",
                     regressed ? "REGRESSED" : "ok"});
    }
  }
  return regressions;
}

int compare_dirs(const std::string& base_dir, const std::string& cand_dir,
                 const Options& options, Table& table) {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(cand_dir)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) == 0 &&
        file.size() > 5 + 5 &&  // "BENCH_" + ".json"
        file.substr(file.size() - 5) == ".json") {
      names.push_back(file);
    }
  }
  std::sort(names.begin(), names.end());
  int regressions = 0;
  for (const std::string& file : names) {
    const std::string base_path = base_dir + "/" + file;
    if (!fs::exists(base_path)) {
      std::printf("bench_compare: %s: new benchmark (no baseline)\n",
                  file.c_str());
      continue;
    }
    regressions += compare_files(base_path, cand_dir + "/" + file, options,
                                 table);
  }
  // A benchmark that disappeared from the run is a broken pipeline, not an
  // improvement.
  for (const auto& entry : fs::directory_iterator(base_dir)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) == 0 &&
        file.substr(std::max<std::size_t>(file.size(), 5) - 5) == ".json" &&
        !fs::exists(cand_dir + "/" + file)) {
      std::fprintf(stderr, "bench_compare: %s: missing from candidate\n",
                   file.c_str());
      ++regressions;
    }
  }
  return regressions;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare [--threshold <metric>=<pct>]... "
               "[--quiet] <baseline> <candidate>\n"
               "metrics: wall_time_s (default 10%%), events_per_sec (10%%), "
               "peak_rss_bytes (20%%)\n"
               "baseline/candidate: BENCH_*.json files, or directories of "
               "them\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threshold") == 0 && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) return usage();
      char* end = nullptr;
      const double pct = std::strtod(spec.c_str() + eq + 1, &end);
      if (end == spec.c_str() + eq + 1) return usage();
      options.thresholds.emplace_back(spec.substr(0, eq), pct);
    } else if (std::strcmp(arg, "--quiet") == 0) {
      options.quiet = true;
    } else if (arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) return usage();

  std::error_code ec;
  const bool base_is_dir = fs::is_directory(paths[0], ec);
  const bool cand_is_dir = fs::is_directory(paths[1], ec);
  if (base_is_dir != cand_is_dir) {
    std::fprintf(stderr,
                 "bench_compare: baseline and candidate must both be files "
                 "or both directories\n");
    return 2;
  }

  Table table({"benchmark", "metric", "baseline", "candidate", "change",
               "allowed", "verdict"});
  const int regressions =
      base_is_dir ? compare_dirs(paths[0], paths[1], options, table)
                  : compare_files(paths[0], paths[1], options, table);
  table.print(std::cout);
  if (regressions > 0) {
    std::printf("bench_compare: %d regression(s)\n", regressions);
    return 1;
  }
  std::printf("bench_compare: within thresholds\n");
  return 0;
}
