// anu_sim — config-driven cluster load-management simulator.
//
// Usage:
//   anu_sim [options] <config-file>  # run the configured system
//   anu_sim --compare <config-file>  # run every system, compare
//   anu_sim --example                # print a commented example config
//   anu_sim --chaos-seed <n> [--chaos-profile <p>]  # chaos run
//   anu_sim --seeds <n> [--jobs <m>] [--json-out <f>] [config|chaos opts]
//   anu_sim --matrix [--matrix-out <dir>] [matrix opts] [<config-file>]
//
// Options:
//   --trace-out <file>     write the event trace (.jsonl -> JSONL, else
//                          Chrome trace_event, loadable in ui.perfetto.dev)
//   --manifest-out <file>  write the per-run telemetry manifest (JSON)
//   --strategy <name>      override the config's `system` (any name
//                          parse_system_kind accepts, plus jsqdw for
//                          speed-aware JSQ(d)); run and batch modes
//   --chaos-seed <n>       run a seeded chaos scenario through the full
//                          protocol experiment and check its convergence
//                          invariants (docs/chaos.md); exits 1 on violation
//   --chaos-profile <p>    light | heavy | partition | degrade | mixed
//                          (default mixed)
//   --seeds <n>            batch mode: fan the experiment out across n
//                          derived seeds on the work-stealing pool and
//                          report mean / 95% CI aggregates (docs/ci.md)
//   --jobs <m>             batch parallelism cap (0 = all cores); never
//                          affects results, only wall time
//   --json-out <file>      batch mode: write the versioned results JSON
//   --matrix               scenario-matrix mode: sweep heterogeneity
//                          profiles x server counts x loads x strategies,
//                          one multi-seed batch per cell (docs/strategies.md)
//   --matrix-out <dir>     matrix output directory (default matrix-out)
//   --profiles <csv>       matrix profiles (uniform,paper,bimodal,extreme)
//   --servers <csv>        matrix cluster sizes (default 5,10,20)
//   --loads <csv>          matrix target utilizations (default 0.45,0.75)
//   --strategies <csv>     matrix strategy tokens (default: all systems)
//
// The first two options override the matching `trace_out` / `manifest_out`
// config keys. Schemas: docs/observability.md.
//
// The config format is documented in src/driver/config_file.h. The tool
// replays the configured workload against the configured system and prints
// the experiment summary; with `csv_out` set it also writes the per-server
// latency time series for plotting.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>

#include "common/table.h"
#include "driver/batch.h"
#include "driver/chaos.h"
#include "driver/config_file.h"
#include "driver/matrix.h"
#include "driver/telemetry.h"
#include "metrics/consistency.h"
#include "obs/export.h"
#include "obs/trace_sink.h"

using namespace anu;
using namespace anu::driver;

namespace {

constexpr const char* kExample = R"(# anu_sim example configuration
workload synthetic
seed 42
file_sets 50
requests 66401
duration_min 200
utilization 0.55
speeds 1 3 5 7 9
system anu
tuning_interval_s 120
# fail a server mid-run and bring it back:
fail 60 4
recover 90 4
# csv_out latency_series.csv
# trace_out run.trace.json        # Chrome trace; .jsonl for line-JSON
# manifest_out run.manifest.json  # per-run telemetry manifest
)";

/// Command-line output overrides; empty = use the config keys.
struct OutputOptions {
  std::string trace_out;
  std::string manifest_out;
};

/// Applies a --strategy override; false (with message) on unknown token.
bool apply_strategy(const std::string& strategy, SystemConfig* system) {
  if (strategy.empty()) return true;
  const auto sys = strategy_config(strategy, *system);
  if (!sys) {
    std::fprintf(stderr, "unknown strategy: %s\n", strategy.c_str());
    return false;
  }
  *system = *sys;
  return true;
}

int run(const char* path, const OutputOptions& options,
        const std::string& strategy) {
  ConfigError error;
  auto spec = parse_sim_config_file(path, &error);
  if (!spec) {
    std::fprintf(stderr, "%s:%zu: %s\n", path, error.line,
                 error.message.c_str());
    return 1;
  }
  if (!apply_strategy(strategy, &spec->system)) return 1;
  if (!options.trace_out.empty()) spec->trace_out = options.trace_out;
  if (!options.manifest_out.empty()) spec->manifest_out = options.manifest_out;
  const auto workload = build_workload(*spec, &error);
  if (!workload) {
    std::fprintf(stderr, "%s: %s\n", path, error.message.c_str());
    return 1;
  }

  // The manifest wants the trace counters even when no trace file is
  // written, but recording costs memory — only arm the sink when an
  // artifact asked for it.
  std::unique_ptr<obs::TraceSink> sink;
  if (!spec->trace_out.empty() || !spec->manifest_out.empty()) {
    sink = std::make_unique<obs::TraceSink>();
    spec->experiment.trace = sink.get();
  }

  auto balancer = make_balancer(
      spec->system, spec->experiment.cluster.server_speeds.size());
  std::printf("anu_sim: %zu requests / %zu file sets on %zu servers, "
              "system %s\n",
              workload->request_count(), workload->file_set_count(),
              spec->experiment.cluster.server_speeds.size(),
              system_label(spec->system.kind).c_str());
  const auto result = run_experiment(spec->experiment, *workload, *balancer);

  Table summary({"metric", "value"});
  summary.add_row({"requests completed",
                   std::to_string(result.requests_completed)});
  summary.add_row({"mean latency (s)",
                   format_double(result.aggregate.mean(), 4)});
  summary.add_row({"latency stddev", format_double(result.aggregate.stddev(), 4)});
  summary.add_row({"steady-state mean (s)",
                   format_double(result.steady_state.mean(), 4)});
  summary.add_row({"p50 / p95 / p99 (s)",
                   format_double(result.latency_histogram.quantile(0.50), 3) +
                       " / " +
                       format_double(result.latency_histogram.quantile(0.95), 3) +
                       " / " +
                       format_double(result.latency_histogram.quantile(0.99), 3)});
  summary.add_row({"file-set moves", std::to_string(result.total_moved)});
  summary.add_row({"% workload moved (cumulative)",
                   format_double(result.percent_workload_moved, 1)});
  summary.add_row({"replicated state (bytes)",
                   std::to_string(result.shared_state_bytes)});
  const auto consistency =
      metrics::performance_consistency(result.per_server);
  summary.add_row({"per-server latency CV",
                   format_double(consistency.latency_cv, 3)});
  summary.add_row({"tuning rounds", std::to_string(result.tuning_rounds)});
  summary.print(std::cout);

  Table servers({"server", "served", "mean_latency", "utilization"});
  for (std::size_t s = 0; s < result.server_count; ++s) {
    servers.add_row({std::to_string(s), std::to_string(result.served[s]),
                     format_double(result.per_server[s].mean(), 4),
                     format_double(result.utilization[s], 3)});
  }
  servers.print(std::cout);

  if (!spec->csv_out.empty()) {
    std::vector<std::string> headers{"time_s"};
    for (std::size_t s = 0; s < result.server_count; ++s) {
      headers.push_back("server" + std::to_string(s));
    }
    Table series(std::move(headers));
    const std::size_t windows = result.latency_over_time.empty()
                                    ? 0
                                    : result.latency_over_time[0].size();
    for (std::size_t w = 0; w < windows; ++w) {
      std::vector<double> row{result.latency_over_time[0][w].time};
      for (std::size_t s = 0; s < result.server_count; ++s) {
        row.push_back(result.latency_over_time[s][w].value);
      }
      series.add_numeric_row(row, 4);
    }
    if (series.write_csv_file(spec->csv_out)) {
      std::printf("wrote latency series to %s\n", spec->csv_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", spec->csv_out.c_str());
      return 1;
    }
  }

  if (!spec->trace_out.empty()) {
    if (obs::write_trace_file(*sink, spec->trace_out)) {
      std::printf("wrote trace (%zu events, %zu dropped) to %s\n",
                  sink->size(), sink->dropped(), spec->trace_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n",
                   spec->trace_out.c_str());
      return 1;
    }
  }
  if (!spec->manifest_out.empty()) {
    if (write_manifest_file(spec->manifest_out, *spec, result, sink.get())) {
      std::printf("wrote manifest to %s\n", spec->manifest_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n",
                   spec->manifest_out.c_str());
      return 1;
    }
  }
  return 0;
}

int run_chaos_cli(std::uint64_t seed, ChaosProfile profile,
                  const OutputOptions& options) {
  ChaosConfig config;
  config.seed = seed;
  config.profile = profile;
  std::unique_ptr<obs::TraceSink> sink;
  if (!options.trace_out.empty() || !options.manifest_out.empty()) {
    sink = std::make_unique<obs::TraceSink>();
    config.trace = sink.get();
  }

  std::printf("anu_sim --chaos: profile %s, seed %llu, %zu servers, "
              "%zu requests, horizon %.0fs (faults cease at %.0fs)\n",
              chaos_profile_name(profile),
              static_cast<unsigned long long>(seed), config.servers,
              config.requests, config.horizon,
              config.horizon * kFaultPhaseFraction);
  const ChaosReport report = run_chaos(config);

  Table scenario({"fault", "value"});
  scenario.add_row({"loss", format_double(report.faults.loss, 3)});
  scenario.add_row({"duplicate", format_double(report.faults.duplicate, 3)});
  scenario.add_row({"delay_spike",
                    format_double(report.faults.delay_spike, 3)});
  scenario.add_row({"reorder", format_double(report.faults.reorder, 3)});
  scenario.add_row({"partition_windows",
                    std::to_string(report.faults.partitions.size())});
  scenario.add_row({"membership_events",
                    std::to_string(report.failures.events().size())});
  scenario.print(std::cout);

  const auto& cp = report.result.control_plane;
  Table counters({"counter", "value"});
  counters.add_row({"messages_sent", std::to_string(cp.messages_sent)});
  counters.add_row({"messages_delivered",
                    std::to_string(cp.messages_delivered)});
  counters.add_row({"drops_injected", std::to_string(cp.drops_injected)});
  counters.add_row({"drops_endpoint_down",
                    std::to_string(cp.drops_endpoint_down)});
  counters.add_row({"duplicates_injected",
                    std::to_string(cp.duplicates_injected)});
  counters.add_row({"reliable_sent", std::to_string(cp.reliable_sent)});
  counters.add_row({"retransmits", std::to_string(cp.retransmits)});
  counters.add_row({"acks_received", std::to_string(cp.acks_received)});
  counters.add_row({"duplicates_suppressed",
                    std::to_string(cp.duplicates_suppressed)});
  counters.add_row({"retries_abandoned",
                    std::to_string(cp.retries_abandoned)});
  counters.add_row({"requests_completed",
                    std::to_string(report.result.requests_completed)});
  counters.add_row({"tuning_rounds",
                    std::to_string(report.result.tuning_rounds)});
  counters.print(std::cout);

  if (!options.trace_out.empty()) {
    if (obs::write_trace_file(*sink, options.trace_out)) {
      std::printf("wrote trace (%zu events, %zu dropped) to %s\n",
                  sink->size(), sink->dropped(), options.trace_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.trace_out.c_str());
      return 1;
    }
  }
  if (!options.manifest_out.empty()) {
    // The manifest's config block describes the generated scenario: the
    // cluster the chaos run built plus its membership script (degrade
    // events round-trip through the config format).
    SimSpec spec;
    spec.experiment.horizon = config.horizon;
    spec.experiment.tuning_interval = config.protocol.tuning_interval;
    spec.experiment.failures = report.failures;
    static constexpr double kPaperSpeeds[] = {1.0, 3.0, 5.0, 7.0, 9.0};
    spec.experiment.cluster.server_speeds.clear();
    for (std::size_t s = 0; s < config.servers; ++s) {
      spec.experiment.cluster.server_speeds.push_back(kPaperSpeeds[s % 5]);
    }
    if (write_manifest_file(options.manifest_out, spec, report.result,
                            sink.get())) {
      std::printf("wrote manifest to %s\n", options.manifest_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.manifest_out.c_str());
      return 1;
    }
  }

  if (!report.passed()) {
    std::printf("chaos: %zu invariant violation(s):\n",
                report.violations.size());
    for (const std::string& v : report.violations) {
      std::printf("  - %s\n", v.c_str());
    }
    return 1;
  }
  std::printf("chaos: converged — replicas agree, coverage holds, "
              "counters reconcile\n");
  return 0;
}

/// Default template for `--seeds` with no config file: the paper cluster
/// under a scaled-down synthetic workload, sized so a 64-seed batch stays
/// interactive at --jobs 1 (the determinism check in tests runs exactly
/// that).
SimSpec default_batch_spec() {
  SimSpec spec;
  spec.synthetic.request_count = 4000;
  spec.synthetic.file_set_count = 25;
  spec.synthetic.duration = 2400.0;
  return spec;
}

int run_batch_cli(std::size_t seeds, std::size_t jobs,
                  const std::string& json_out, const char* config_path,
                  bool chaos, std::uint64_t chaos_seed,
                  ChaosProfile chaos_profile, const std::string& strategy) {
  BatchConfig batch;
  batch.seeds = seeds;
  batch.jobs = jobs;
  if (chaos) {
    batch.mode = BatchConfig::Mode::kChaos;
    batch.chaos.profile = chaos_profile;
    batch.base_seed = chaos_seed;
    std::printf("anu_sim --seeds: %zu chaos runs (profile %s), base seed "
                "%llu, jobs %zu\n",
                seeds, chaos_profile_name(chaos_profile),
                static_cast<unsigned long long>(chaos_seed), jobs);
  } else {
    if (config_path) {
      ConfigError error;
      const auto spec = parse_sim_config_file(config_path, &error);
      if (!spec) {
        std::fprintf(stderr, "%s:%zu: %s\n", config_path, error.line,
                     error.message.c_str());
        return 1;
      }
      batch.spec = *spec;
    } else {
      batch.spec = default_batch_spec();
    }
    if (!apply_strategy(strategy, &batch.spec.system)) return 1;
    batch.base_seed = batch.spec.workload == SimSpec::WorkloadKind::kTrace
                          ? batch.spec.trace.seed
                          : batch.spec.synthetic.seed;
    std::printf("anu_sim --seeds: %zu runs of system %s, base seed %llu, "
                "jobs %zu\n",
                seeds, system_label(batch.spec.system.kind).c_str(),
                static_cast<unsigned long long>(batch.base_seed), jobs);
  }

  BatchResult result;
  try {
    result = run_experiment_batch(batch);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "batch failed: %s\n", e.what());
    return 1;
  }

  Table table({"metric", "mean", "ci95", "stddev", "min", "max"});
  for (const auto& [name, a] : result.metrics) {
    table.add_row({name, format_double(a.mean, 4), format_double(a.ci95, 4),
                   format_double(a.stddev, 4), format_double(a.min, 4),
                   format_double(a.max, 4)});
  }
  table.print(std::cout);

  if (!json_out.empty()) {
    if (write_batch_results_file(json_out, batch, result)) {
      std::printf("wrote batch results to %s\n", json_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 1;
    }
  }
  // Chaos batches gate on convergence: any violation in any seed fails.
  for (const auto& [name, a] : result.metrics) {
    if (name == "violations" && a.max > 0.0) {
      std::fprintf(stderr, "batch: convergence violations in at least one "
                           "seed (max %.0f)\n",
                   a.max);
      return 1;
    }
  }
  return 0;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  for (const char c : csv) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item.push_back(c);
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

/// Matrix-mode dimension overrides; empty = the MatrixConfig defaults.
struct MatrixOptions {
  std::string out_dir;
  std::string profiles;
  std::string servers;
  std::string loads;
  std::string strategies;
};

int run_matrix_cli(std::size_t seeds, std::size_t jobs,
                   const char* config_path, const MatrixOptions& options) {
  MatrixConfig config;
  if (config_path) {
    ConfigError error;
    const auto spec = parse_sim_config_file(config_path, &error);
    if (!spec) {
      std::fprintf(stderr, "%s:%zu: %s\n", config_path, error.line,
                   error.message.c_str());
      return 1;
    }
    config.base = *spec;
    config.base_seed = spec->synthetic.seed;
  }
  if (seeds != 0) config.seeds = seeds;
  config.jobs = jobs;
  if (!options.out_dir.empty()) config.out_dir = options.out_dir;
  if (!options.profiles.empty()) config.profiles = split_csv(options.profiles);
  if (!options.strategies.empty()) {
    config.strategies = split_csv(options.strategies);
  }
  if (!options.servers.empty()) {
    config.server_counts.clear();
    for (const std::string& k : split_csv(options.servers)) {
      const std::size_t servers = std::strtoull(k.c_str(), nullptr, 10);
      if (servers == 0) {
        std::fprintf(stderr, "bad --servers value: %s\n", k.c_str());
        return 2;
      }
      config.server_counts.push_back(servers);
    }
  }
  if (!options.loads.empty()) {
    config.loads.clear();
    for (const std::string& u : split_csv(options.loads)) {
      config.loads.push_back(std::strtod(u.c_str(), nullptr));
    }
  }

  const std::size_t cell_count = config.profiles.size() *
                                 config.server_counts.size() *
                                 config.loads.size() *
                                 config.strategies.size();
  std::printf("anu_sim --matrix: %zu profiles x %zu sizes x %zu loads x "
              "%zu strategies = %zu cells, %zu seeds each, base seed %llu\n",
              config.profiles.size(), config.server_counts.size(),
              config.loads.size(), config.strategies.size(), cell_count,
              config.seeds,
              static_cast<unsigned long long>(config.base_seed));

  MatrixResult result;
  try {
    result = run_matrix(config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "matrix failed: %s\n", e.what());
    return 1;
  }
  print_matrix_summary(std::cout, result);

  const std::string summary_path = config.out_dir + "/matrix-summary.json";
  if (!write_matrix_summary_file(summary_path, config, result)) {
    std::fprintf(stderr, "error: cannot write %s\n", summary_path.c_str());
    return 1;
  }
  std::printf("\nwrote %zu cell files + matrix-summary.json to %s\n",
              result.cells.size(), config.out_dir.c_str());
  return 0;
}

int compare(const char* path) {
  ConfigError error;
  const auto spec = parse_sim_config_file(path, &error);
  if (!spec) {
    std::fprintf(stderr, "%s:%zu: %s\n", path, error.line,
                 error.message.c_str());
    return 1;
  }
  const auto workload = build_workload(*spec, &error);
  if (!workload) {
    std::fprintf(stderr, "%s: %s\n", path, error.message.c_str());
    return 1;
  }
  std::printf("anu_sim --compare: %zu requests / %zu file sets on %zu "
              "servers\n",
              workload->request_count(), workload->file_set_count(),
              spec->experiment.cluster.server_speeds.size());

  Table table({"system", "mean_latency", "stddev", "steady_mean", "p99",
               "moves", "state_bytes", "latency_cv"});
  for (SystemKind kind : kAllSystems) {
    SystemConfig system = spec->system;  // carries anu/vp sub-configs
    system.kind = kind;
    auto balancer = make_balancer(
        system, spec->experiment.cluster.server_speeds.size());
    const auto result = run_experiment(spec->experiment, *workload, *balancer);
    const auto consistency =
        metrics::performance_consistency(result.per_server, 0.02);
    table.add_row({system_label(kind),
                   format_double(result.aggregate.mean(), 3),
                   format_double(result.aggregate.stddev(), 3),
                   format_double(result.steady_state.mean(), 3),
                   format_double(result.latency_histogram.quantile(0.99), 3),
                   std::to_string(result.total_moved),
                   std::to_string(result.shared_state_bytes),
                   format_double(consistency.latency_cv, 3)});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <config-file>\n"
               "       %s --compare <config-file>\n"
               "       %s --example\n"
               "       %s --chaos-seed <n> [--chaos-profile <p>] [options]\n"
               "       %s --seeds <n> [--jobs <m>] [--json-out <file>]\n"
               "          [<config-file> | --chaos-seed <n> "
               "[--chaos-profile <p>]]\n"
               "       %s --matrix [--matrix-out <dir>] [--profiles <csv>]\n"
               "          [--servers <csv>] [--loads <csv>] "
               "[--strategies <csv>]\n"
               "          [--seeds <n>] [--jobs <m>] [<config-file>]\n"
               "options:\n"
               "  --trace-out <file>     write event trace (.jsonl or Chrome)\n"
               "  --manifest-out <file>  write per-run telemetry manifest\n"
               "  --strategy <name>      override the configured system\n"
               "  --chaos-profile <p>    light|heavy|partition|degrade|mixed\n"
               "  --seeds <n>            multi-seed batch; mean + 95%% CI\n"
               "  --jobs <m>             batch parallelism cap (0 = cores)\n"
               "  --json-out <file>      batch results JSON (docs/ci.md)\n"
               "  --matrix               heterogeneity scenario matrix\n"
               "  --matrix-out <dir>     matrix output dir (default "
               "matrix-out)\n",
               argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--example") == 0) {
    std::fputs(kExample, stdout);
    return 0;
  }
  if (argc == 3 && std::strcmp(argv[1], "--compare") == 0) {
    return compare(argv[2]);
  }
  OutputOptions options;
  const char* config = nullptr;
  bool chaos = false;
  std::uint64_t chaos_seed = 0;
  ChaosProfile chaos_profile = ChaosProfile::kMixed;
  bool batch = false;
  std::size_t seeds = 0;
  std::size_t jobs = 0;
  std::string json_out;
  std::string strategy;
  bool matrix = false;
  MatrixOptions matrix_options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--trace-out") == 0 && i + 1 < argc) {
      options.trace_out = argv[++i];
    } else if (std::strcmp(arg, "--manifest-out") == 0 && i + 1 < argc) {
      options.manifest_out = argv[++i];
    } else if (std::strcmp(arg, "--strategy") == 0 && i + 1 < argc) {
      strategy = argv[++i];
    } else if (std::strcmp(arg, "--matrix") == 0) {
      matrix = true;
    } else if (std::strcmp(arg, "--matrix-out") == 0 && i + 1 < argc) {
      matrix_options.out_dir = argv[++i];
    } else if (std::strcmp(arg, "--profiles") == 0 && i + 1 < argc) {
      matrix_options.profiles = argv[++i];
    } else if (std::strcmp(arg, "--servers") == 0 && i + 1 < argc) {
      matrix_options.servers = argv[++i];
    } else if (std::strcmp(arg, "--loads") == 0 && i + 1 < argc) {
      matrix_options.loads = argv[++i];
    } else if (std::strcmp(arg, "--strategies") == 0 && i + 1 < argc) {
      matrix_options.strategies = argv[++i];
    } else if (std::strcmp(arg, "--chaos-seed") == 0 && i + 1 < argc) {
      chaos = true;
      chaos_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--chaos-profile") == 0 && i + 1 < argc) {
      const auto parsed = parse_chaos_profile(argv[++i]);
      if (!parsed) {
        std::fprintf(stderr, "unknown chaos profile: %s\n", argv[i]);
        return usage(argv[0]);
      }
      chaos_profile = *parsed;
    } else if (std::strcmp(arg, "--seeds") == 0 && i + 1 < argc) {
      batch = true;
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      jobs = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (!config) {
      config = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (matrix) {
    // The matrix owns its strategy list; --strategy / chaos don't compose.
    if (chaos || !strategy.empty() || !json_out.empty()) {
      return usage(argv[0]);
    }
    return run_matrix_cli(seeds, jobs, config, matrix_options);
  }
  if (batch) {
    if (seeds == 0) return usage(argv[0]);
    if (chaos && config) return usage(argv[0]);
    return run_batch_cli(seeds, jobs, json_out, config, chaos, chaos_seed,
                         chaos_profile, strategy);
  }
  if (!json_out.empty() || jobs != 0) return usage(argv[0]);  // batch-only
  if (chaos) {
    if (config) return usage(argv[0]);  // chaos generates its own scenario
    if (!strategy.empty()) return usage(argv[0]);
    return run_chaos_cli(chaos_seed, chaos_profile, options);
  }
  if (!config) return usage(argv[0]);
  return run(config, options, strategy);
}
